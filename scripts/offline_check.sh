#!/usr/bin/env bash
# Offline build + test driver for containers without a crates.io mirror.
#
# The workspace's third-party dependencies (rand, serde, proptest,
# criterion, ...) are present only as prebuilt rlibs under target/, so
# `cargo build` cannot resolve the dependency graph offline. This script
# compiles the workspace crates and their test targets directly with rustc
# against those rlibs and runs every test binary. CI environments with
# registry access should use ci.sh (plain cargo) instead.
#
# Usage: scripts/offline_check.sh [build|bins|test|smoke|all]  (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
DREL=target/release/deps
DDBG=target/debug/deps
OUT=target/offline
mkdir -p "$OUT"

# Pinned third-party rlibs (a mutually consistent set).
RAND=$DREL/librand-38548fc4b0cc48c0.rlib
RAND_DISTR=$DREL/librand_distr-3cc0121bba7d8daf.rlib
SERDE=$DREL/libserde-f43cb8d7a11270f8.rlib
SERDE_JSON=$DREL/libserde_json-41a2d9df62ef3141.rlib
CRITERION=$DREL/libcriterion-9dcf338883deb2b8.rlib
PROPTEST=$DDBG/libproptest-a4bc3a48b7d5576d.rlib

# When the pinned rlibs are absent (fresh container without a populated
# target/), fall back to the source shims in third_party/, built by
# build_deps below. The set is all-or-nothing: pinned and shim rlibs are
# never mixed.
USE_SHIMS=""
if [ ! -f "$SERDE" ]; then
  USE_SHIMS=1
  RAND=$OUT/librand.rlib
  RAND_DISTR=$OUT/librand_distr.rlib
  SERDE=$OUT/libserde.rlib
  SERDE_JSON=$OUT/libserde_json.rlib
  CRITERION=$OUT/libcriterion.rlib
  PROPTEST=$OUT/libproptest.rlib
fi

RUSTC_FLAGS=(--edition 2021 -C opt-level=2 -C debug-assertions=on -L "$DREL" -L "$DDBG" -L "$OUT")

ext() { echo "--extern $1=$2"; }

E_RAND=$(ext rand "$RAND")
E_DISTR=$(ext rand_distr "$RAND_DISTR")
E_SERDE=$(ext serde "$SERDE")
E_JSON=$(ext serde_json "$SERDE_JSON")
E_PROPTEST=$(ext proptest "$PROPTEST")
E_CRITERION=$(ext criterion "$CRITERION")

lib() { # lib <crate_name> <src> <externs...>
  local name="$1" src="$2"; shift 2
  echo "  lib $name"
  rustc "${RUSTC_FLAGS[@]}" --crate-type rlib --crate-name "$name" "$src" \
    -o "$OUT/lib$name.rlib" "$@"
}

tbin() { # tbin <out_name> <src> <externs...>
  local name="$1" src="$2"; shift 2
  [ -f "$src" ] || { echo "  test-bin $name (skipped: $src missing)"; return 0; }
  echo "  test-bin $name"
  rustc "${RUSTC_FLAGS[@]}" --test --crate-name "$name" "$src" \
    -o "$OUT/$name" "$@"
}

pmac() { # pmac <crate_name> <src> <externs...>
  local name="$1" src="$2"; shift 2
  echo "  proc-macro $name"
  rustc "${RUSTC_FLAGS[@]}" --crate-type proc-macro --crate-name "$name" "$src" \
    -o "$OUT/lib$name.so" "$@"
}

build_deps() {
  [ -n "$USE_SHIMS" ] || return 0
  echo "== building third_party shim crates (pinned rlibs absent)"
  lib rand third_party/rand.rs
  lib rand_distr third_party/rand_distr.rs $E_RAND
  pmac serde_derive third_party/serde_derive.rs
  lib serde third_party/serde.rs --extern serde_derive="$OUT/libserde_derive.so"
  pmac serde_json_macros third_party/serde_json_macros.rs
  lib serde_json third_party/serde_json.rs $E_SERDE \
    --extern serde_json_macros="$OUT/libserde_json_macros.so"
  lib proptest third_party/proptest.rs $E_RAND
  lib criterion third_party/criterion.rs
}

# Workspace crate externs, in dependency order.
E_PROBNUM="--extern dcl_probnum=$OUT/libdcl_probnum.rlib"
E_METRICS="--extern dcl_metrics=$OUT/libdcl_metrics.rlib"
E_OBS="--extern dcl_obs=$OUT/libdcl_obs.rlib"
E_PARALLEL="--extern dcl_parallel=$OUT/libdcl_parallel.rlib"
E_NETSIM="--extern dcl_netsim=$OUT/libdcl_netsim.rlib"
E_HMM="--extern dcl_hmm=$OUT/libdcl_hmm.rlib"
E_MMHD="--extern dcl_mmhd=$OUT/libdcl_mmhd.rlib"
E_LOSSPAIR="--extern dcl_losspair=$OUT/libdcl_losspair.rlib"
E_CLOCKSYNC="--extern dcl_clocksync=$OUT/libdcl_clocksync.rlib"
E_FAULTS="--extern dcl_faults=$OUT/libdcl_faults.rlib"
E_INET="--extern dcl_inet=$OUT/libdcl_inet.rlib"
E_CORE="--extern dcl_core=$OUT/libdcl_core.rlib"
E_BENCH="--extern dcl_bench=$OUT/libdcl_bench.rlib"
E_FACADE="--extern dominant_congested_links=$OUT/libdominant_congested_links.rlib"

build_libs() {
  echo "== building workspace rlibs"
  lib dcl_probnum crates/probnum/src/lib.rs $E_RAND $E_SERDE
  lib dcl_metrics crates/metrics/src/lib.rs $E_SERDE
  lib dcl_obs crates/obs/src/lib.rs $E_METRICS $E_SERDE $E_JSON
  lib dcl_parallel crates/parallel/src/lib.rs $E_METRICS $E_OBS
  lib dcl_netsim crates/netsim/src/lib.rs $E_PROBNUM $E_METRICS $E_OBS $E_RAND $E_DISTR $E_SERDE
  lib dcl_hmm crates/hmm/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_RAND $E_SERDE
  lib dcl_mmhd crates/mmhd/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_RAND $E_SERDE
  lib dcl_losspair crates/losspair/src/lib.rs $E_PROBNUM $E_NETSIM $E_SERDE
  lib dcl_clocksync crates/clocksync/src/lib.rs $E_SERDE
  lib dcl_faults crates/faults/src/lib.rs $E_NETSIM $E_METRICS $E_OBS $E_CLOCKSYNC $E_RAND $E_SERDE
  lib dcl_inet crates/inet/src/lib.rs $E_PROBNUM $E_NETSIM $E_CLOCKSYNC $E_RAND $E_DISTR $E_SERDE
  lib dcl_core crates/core/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_NETSIM $E_HMM $E_MMHD $E_LOSSPAIR $E_RAND $E_SERDE
  lib dcl_bench crates/bench/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_NETSIM $E_HMM $E_MMHD $E_LOSSPAIR $E_CLOCKSYNC $E_INET $E_CORE $E_RAND $E_SERDE $E_JSON
  lib dominant_congested_links src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_NETSIM $E_HMM $E_MMHD $E_LOSSPAIR $E_CLOCKSYNC $E_FAULTS $E_INET $E_CORE $E_RAND $E_JSON
}

build_tests() {
  echo "== building test binaries"
  # Unit tests (lib targets compiled with --test).
  tbin ut_probnum crates/probnum/src/lib.rs $E_RAND $E_SERDE $E_PROPTEST
  tbin ut_metrics crates/metrics/src/lib.rs $E_SERDE
  tbin ut_obs crates/obs/src/lib.rs $E_METRICS $E_SERDE $E_JSON
  tbin ut_parallel crates/parallel/src/lib.rs $E_METRICS $E_OBS
  tbin ut_netsim crates/netsim/src/lib.rs $E_PROBNUM $E_METRICS $E_OBS $E_RAND $E_DISTR $E_SERDE
  tbin ut_hmm crates/hmm/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_RAND $E_SERDE
  tbin ut_mmhd crates/mmhd/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_RAND $E_SERDE
  tbin ut_losspair crates/losspair/src/lib.rs $E_PROBNUM $E_NETSIM $E_SERDE
  tbin ut_clocksync crates/clocksync/src/lib.rs $E_SERDE
  tbin ut_faults crates/faults/src/lib.rs $E_NETSIM $E_METRICS $E_OBS $E_CLOCKSYNC $E_RAND $E_SERDE $E_JSON
  tbin ut_inet crates/inet/src/lib.rs $E_PROBNUM $E_NETSIM $E_CLOCKSYNC $E_RAND $E_DISTR $E_SERDE
  tbin ut_core crates/core/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_NETSIM $E_HMM $E_MMHD $E_LOSSPAIR $E_RAND $E_SERDE
  tbin ut_bench crates/bench/src/lib.rs $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_NETSIM $E_HMM $E_MMHD $E_LOSSPAIR $E_CLOCKSYNC $E_INET $E_CORE $E_RAND $E_SERDE $E_JSON

  # Integration tests.
  tbin it_metrics_prop crates/metrics/tests/proptests.rs $E_METRICS $E_SERDE $E_JSON $E_RAND $E_PROPTEST
  tbin it_probnum_prop crates/probnum/tests/proptests.rs $E_PROBNUM $E_RAND $E_PROPTEST
  tbin it_netsim_prop crates/netsim/tests/proptests.rs $E_NETSIM $E_PROBNUM $E_RAND $E_PROPTEST
  tbin it_hmm_prop crates/hmm/tests/proptests.rs $E_HMM $E_MMHD $E_PROBNUM $E_OBS $E_RAND $E_PROPTEST
  tbin it_mmhd_prop crates/mmhd/tests/proptests.rs $E_MMHD $E_PROBNUM $E_OBS $E_RAND $E_PROPTEST
  tbin it_losspair_prop crates/losspair/tests/proptests.rs $E_LOSSPAIR $E_NETSIM $E_PROBNUM $E_RAND $E_PROPTEST
  tbin it_clocksync_prop crates/clocksync/tests/proptests.rs $E_CLOCKSYNC $E_RAND $E_PROPTEST
  tbin it_inet_pipeline crates/inet/tests/pipeline.rs $E_INET $E_NETSIM $E_CLOCKSYNC $E_PROBNUM $E_RAND $E_PROPTEST
  tbin it_core_prop crates/core/tests/proptests.rs $E_CORE $E_NETSIM $E_HMM $E_MMHD $E_LOSSPAIR $E_PROBNUM $E_RAND $E_PROPTEST

  # Facade integration tests.
  local FACADE_EXT="$E_FACADE $E_PROBNUM $E_PARALLEL $E_METRICS $E_OBS $E_NETSIM $E_HMM $E_MMHD $E_LOSSPAIR $E_CLOCKSYNC $E_FAULTS $E_INET $E_CORE $E_RAND $E_JSON"
  tbin it_end_to_end tests/end_to_end.rs $FACADE_EXT
  tbin it_baselines tests/baselines.rs $FACADE_EXT
  tbin it_clock_pipeline tests/clock_pipeline.rs $FACADE_EXT
  tbin it_ext_localization tests/extension_localization.rs $FACADE_EXT
  tbin it_parallel_determinism tests/parallel_determinism.rs $FACADE_EXT
  tbin it_golden_regression tests/golden_regression.rs $FACADE_EXT $E_BENCH $E_SERDE
  tbin it_fault_robustness tests/fault_robustness.rs $FACADE_EXT
  tbin it_streaming_equivalence tests/streaming_equivalence.rs $FACADE_EXT
  tbin it_streaming_props tests/streaming_proptests.rs $FACADE_EXT
}

build_bins() {
  echo "== compile-checking bench bins and benches"
  local BIN_EXT="$E_BENCH $E_CORE $E_INET $E_METRICS $E_OBS $E_NETSIM $E_LOSSPAIR $E_CLOCKSYNC $E_FAULTS $E_HMM $E_MMHD $E_PROBNUM $E_PARALLEL $E_RAND $E_DISTR $E_SERDE $E_JSON"
  for src in crates/bench/src/bin/*.rs; do
    local name
    name=$(basename "$src" .rs)
    echo "  bin $name"
    rustc "${RUSTC_FLAGS[@]}" --crate-type bin --crate-name "$name" "$src" \
      -o "$OUT/bin_$name" $BIN_EXT
  done
  for src in crates/bench/benches/*.rs; do
    local name
    name=$(basename "$src" .rs)
    echo "  bench $name"
    rustc "${RUSTC_FLAGS[@]}" --emit=metadata --crate-type bin --crate-name "bench_$name" "$src" \
      -o "$OUT/bench_$name.rmeta" $BIN_EXT $E_CRITERION
  done
}

run_tests() {
  echo "== running tests"
  # Known shim-baseline caveat: under the third_party/ source shims,
  # four statistical tests land on the other side of their acceptance
  # thresholds (the shim RNG is bit-compatible for every golden-pinned
  # scenario, but these runs diverge somewhere past the pinned
  # coverage — all four failures reproduce on the unmodified seed
  # commit with the same shims):
  #   - it_end_to_end::no_dominant_link_is_rejected (WDCL threshold)
  #   - ut_core estimators::tests::model_estimators_put_loss_mass_on_
  #     high_symbols (EM restart lands in a different basin)
  #   - ut_hmm em::tests::single_state_model_recovers_loss_probabilities
  #   - ut_hmm tests::em_recovers_loss_delay_distribution_of_planted_model
  # With the pinned rlibs / real cargo deps all pass; treat exactly
  # these four failures as expected when USE_SHIMS=1.
  local failed=0
  for t in ut_probnum ut_metrics ut_obs ut_parallel ut_netsim ut_hmm ut_mmhd ut_losspair ut_clocksync \
           ut_inet ut_core ut_bench it_probnum_prop it_netsim_prop it_hmm_prop \
           it_mmhd_prop it_losspair_prop it_clocksync_prop it_inet_pipeline \
           it_metrics_prop it_core_prop it_end_to_end it_baselines it_clock_pipeline \
           it_ext_localization it_parallel_determinism it_golden_regression \
           ut_faults it_fault_robustness it_streaming_equivalence it_streaming_props; do
    [ -x "$OUT/$t" ] || continue
    echo "-- $t"
    if ! "$OUT/$t" -q; then failed=1; fi
  done
  return $failed
}

obs_smoke() {
  echo "== instrumented smoke run + artifact validation"
  local artifact
  artifact=$(mktemp -t dcl-obs-smoke.XXXXXX.jsonl)
  # 40 s of measured time is the shortest run that reliably produces
  # losses on the strongly-dominant scenario; the artifact must be
  # non-empty, parse line-by-line through the Event schema, and cover the
  # four core event kinds.
  "$OUT/bin_table2" 40 --obs "$artifact" > /dev/null
  "$OUT/bin_obs_check" "$artifact" 4
  rm -f "$artifact"
}

fault_smoke() {
  echo "== fault-injection smoke run + artifact validation"
  local artifact
  artifact=$(mktemp -t dcl-fault-smoke.XXXXXX.jsonl)
  # A seeded fault-intensity sweep over the bundled scenarios; the
  # artifact must parse through the Event schema and contain
  # fault-injection events (obs_check requires >= 1 kind).
  "$OUT/bin_robustness" --quick --obs "$artifact" > /dev/null
  "$OUT/bin_obs_check" "$artifact" 1
  rm -f "$artifact"
}

streaming_smoke() {
  echo "== streaming smoke run + artifact validation"
  local artifact
  artifact=$(mktemp -t dcl-stream-smoke.XXXXXX.jsonl)
  # A quick migrating-DCL replay through the streaming engine; the
  # artifact must parse through the Event schema and contain
  # verdict-transition events alongside the per-window pipeline events.
  "$OUT/bin_streaming" --quick --obs "$artifact" > /dev/null
  "$OUT/bin_obs_check" "$artifact" 3
  rm -f "$artifact"
}

perf_smoke() {
  echo "== perf trajectory smoke run + artifact validation"
  local report metrics
  report=$(mktemp -t dcl-perf-smoke.XXXXXX.json)
  metrics=$(mktemp -t dcl-metrics-smoke.XXXXXX.json)
  # The quick ladder through simulate/identify/sweep; both the perf
  # report and the --metrics snapshot must pass their schema validators.
  # (CI proper writes the report to BENCH_perf.json at the repo root;
  # the smoke keeps it in a temp file.)
  "$OUT/bin_perf" --quick --out "$report" --metrics "$metrics" > /dev/null
  "$OUT/bin_obs_check" --perf "$report"
  "$OUT/bin_obs_check" --metrics "$metrics"
  rm -f "$report" "$metrics"
}

case "$MODE" in
  build) build_deps; build_libs ;;
  bins) build_deps; build_bins ;;
  test) build_deps; build_tests; run_tests ;;
  smoke) obs_smoke; fault_smoke; streaming_smoke; perf_smoke ;;
  all) build_deps; build_libs; build_bins; build_tests; run_tests; obs_smoke; fault_smoke; streaming_smoke; perf_smoke ;;
  *) echo "usage: $0 [build|bins|test|smoke|all]" >&2; exit 2 ;;
esac
