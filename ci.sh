#!/usr/bin/env bash
# CI pipeline for environments with a crates.io registry (or vendored
# deps). Containers without registry access should run
# scripts/offline_check.sh instead, which drives rustc directly against
# the prebuilt rlibs under target/.
#
# Jobs:
#   1. release build + full test suite (default thread resolution);
#   2. the determinism suite again, pinned to 2 worker threads, to prove
#      results are independent of the thread count CI happens to have;
#   3. an instrumented smoke run whose JSONL artifact must parse back
#      through the event schema (obs_check);
#   4. the robustness job: the end-to-end no-panic/no-NaN property suite
#      plus a seeded fault-injection smoke sweep whose artifact must
#      contain fault-injection events;
#   5. the streaming job: the batch-equivalence + chunking-invariance
#      suites, then a quick migrating-DCL replay whose artifact must
#      contain verdict-transition events;
#   6. the perf-trajectory job: the `perf --quick` benchmark regenerates
#      BENCH_perf.json at the repo root and both the report and a
#      `--metrics` snapshot must pass the schema validators;
#   7. clippy with warnings denied on the crates this layer touches.

set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) + tests"
cargo build --release
cargo test -q

echo "== determinism suite at 2 worker threads"
DCL_PARALLELISM=2 RAYON_NUM_THREADS=2 cargo test -q \
  --test parallel_determinism --test golden_regression
DCL_PARALLELISM=2 RAYON_NUM_THREADS=2 cargo test -q -p dcl-hmm --test proptests
DCL_PARALLELISM=2 RAYON_NUM_THREADS=2 cargo test -q -p dcl-mmhd --test proptests

echo "== instrumented smoke run + artifact validation"
OBS_ARTIFACT=$(mktemp -t dcl-obs-smoke.XXXXXX.jsonl)
trap 'rm -f "$OBS_ARTIFACT"' EXIT
# 40 s of measured time is the shortest run that reliably produces losses
# on the strongly-dominant scenario; the artifact must be non-empty,
# parse line-by-line through the Event schema, and cover the four core
# event kinds (em-iteration, queue-stats, test-decision, span-timing).
cargo run --release -q -p dcl-bench --bin table2 -- 40 --obs "$OBS_ARTIFACT"
cargo run --release -q -p dcl-bench --bin obs_check -- "$OBS_ARTIFACT" 4

echo "== robustness: no-panic property suite + fault-injection smoke"
cargo test -q --test fault_robustness
FAULT_ARTIFACT=$(mktemp -t dcl-fault-smoke.XXXXXX.jsonl)
trap 'rm -f "$OBS_ARTIFACT" "$FAULT_ARTIFACT"' EXIT
cargo run --release -q -p dcl-bench --bin robustness -- --quick --obs "$FAULT_ARTIFACT"
cargo run --release -q -p dcl-bench --bin obs_check -- "$FAULT_ARTIFACT" 1

echo "== streaming: equivalence + invariance suites + migrating-DCL smoke"
cargo test -q --test streaming_equivalence --test streaming_proptests
STREAM_ARTIFACT=$(mktemp -t dcl-stream-smoke.XXXXXX.jsonl)
trap 'rm -f "$OBS_ARTIFACT" "$FAULT_ARTIFACT" "$STREAM_ARTIFACT"' EXIT
cargo run --release -q -p dcl-bench --bin streaming -- --quick --obs "$STREAM_ARTIFACT"
cargo run --release -q -p dcl-bench --bin obs_check -- "$STREAM_ARTIFACT" 3

echo "== perf trajectory: regenerate BENCH_perf.json + validate artifacts"
METRICS_ARTIFACT=$(mktemp -t dcl-metrics-smoke.XXXXXX.json)
trap 'rm -f "$OBS_ARTIFACT" "$FAULT_ARTIFACT" "$STREAM_ARTIFACT" "$METRICS_ARTIFACT"' EXIT
cargo run --release -q -p dcl-bench --bin perf -- --quick --out BENCH_perf.json \
  --metrics "$METRICS_ARTIFACT"
cargo run --release -q -p dcl-bench --bin obs_check -- --perf BENCH_perf.json
cargo run --release -q -p dcl-bench --bin obs_check -- --metrics "$METRICS_ARTIFACT"

echo "== clippy (deny warnings) on the parallel-layer crates"
cargo clippy -q -p dcl-parallel -p dcl-obs -p dcl-metrics -p dcl-probnum -p dcl-hmm \
  -p dcl-mmhd -p dcl-core -p dcl-bench -p dcl-faults --all-targets -- -D warnings

echo "CI OK"
