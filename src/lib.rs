//! Model-based identification of dominant congested links — a full Rust
//! reproduction of Wei, Wang, Towsley & Kurose (ACM IMC 2003 / IEEE ToN
//! 2011).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`identification`] (`dcl-core`) — the paper's method: discretisation,
//!   virtual-queuing-delay estimation, SDCL/WDCL hypothesis tests, and
//!   maximum-queuing-delay bounds;
//! * [`netsim`] — the discrete-event network simulator (ns-2 substitute);
//! * [`mmhd`] / [`hmm`] — the two statistical models with EM inference;
//! * [`losspair`] — the loss-pair baseline;
//! * [`clocksync`] — one-way-delay skew removal;
//! * [`faults`] — the deterministic, seeded measurement-impairment layer
//!   (burst loss, reordering, duplication, clock drift, delay spikes,
//!   truncation, corruption) behind the robustness harness;
//! * [`inet`] — synthetic wide-area measurement paths (PlanetLab
//!   substitute);
//! * [`probnum`] — shared probability/numerics utilities;
//! * [`parallel`] — the deterministic fork-join execution layer behind the
//!   EM restart, duration-sweep and scenario-grid parallelism;
//! * [`obs`] — the zero-overhead observability layer (structured events,
//!   spans, counters) with a deterministic parallel merge contract.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench/src/bin/` for the per-table/figure experiment harness.

#![forbid(unsafe_code)]

pub use dcl_clocksync as clocksync;
pub use dcl_core as identification;
pub use dcl_faults as faults;
pub use dcl_hmm as hmm;
pub use dcl_inet as inet;
pub use dcl_losspair as losspair;
pub use dcl_metrics as metrics;
pub use dcl_mmhd as mmhd;
pub use dcl_netsim as netsim;
pub use dcl_obs as obs;
pub use dcl_parallel as parallel;
pub use dcl_probnum as probnum;
